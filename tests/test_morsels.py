"""Parallel-correctness suite for morsel-driven intra-query execution.

Four test families make the new concurrency trustworthy:

* **Scheduler unit tests** -- work decomposition covers every row exactly
  once in order, results merge in task order regardless of completion
  order, ``workers=1`` never creates a thread, and cancellation leaves
  the pool clean and reusable.
* **Property sweep** -- generated queries replayed with ``workers=1``
  vs. a heavily fanned-out scheduler (tiny morsels force many tasks)
  across block sizes x worker counts x dict/fused/semijoin toggles must
  return identical results, including adversarial morsel boundaries:
  zone-pruned-to-nothing scans, ragged final blocks, and deleted-row
  masks from PR 7 mutations.
* **Counter conservation** -- the fused-kernel counters are accumulated
  per morsel and merged by the coordinator, so the parallel totals must
  equal the sequential ones *exactly* (a race would drop increments),
  and the morsel counters must match the scheduler's own arithmetic.
* **Cancellation storm** -- per-query timeouts firing mid-fanout across
  many threads sharing one scheduler: no exception escapes a runner, no
  task leaks, and the pool keeps serving exact results afterwards.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.executor.executor import Executor
from repro.executor.morsels import (
    MorselCancelled,
    MorselCounters,
    MorselScheduler,
)
from repro.plan.expressions import ColumnRef, Comparison
from repro.plan.logical import RelationRef
from repro.plan.physical import PhysicalPlan, ScanNode
from repro.reopt.registry import make_algorithm
from tests.reference_eval import assert_results_match, canonicalize_table
from tests.test_differential import (
    SEED,
    build_differential_database,
    make_stream,
)


# ----------------------------------------------------------------------
# Scheduler unit tests
# ----------------------------------------------------------------------
class TestMorselScheduler:
    def test_split_ranges_partitions_exactly_in_order(self):
        scheduler = MorselScheduler(2, morsel_rows=10)
        pieces = scheduler.split_ranges([(0, 25), (40, 40), (50, 61)])
        assert pieces == [(0, 10), (10, 20), (20, 25), (50, 60), (60, 61)]
        # Exact coverage: concatenating the pieces reproduces the ranges.
        covered = [row for start, stop in pieces for row in range(start, stop)]
        assert covered == list(range(0, 25)) + list(range(50, 61))

    def test_results_merge_in_task_order_not_completion_order(self):
        with MorselScheduler(4, morsel_rows=1) as scheduler:
            def task(i):
                def run():
                    time.sleep(0.002 * (8 - i))  # later tasks finish first
                    return i
                return run
            assert scheduler.run_ordered([task(i) for i in range(8)]) \
                == list(range(8))

    def test_single_worker_runs_inline_without_a_pool(self):
        scheduler = MorselScheduler(1)
        thread_ids = set()
        scheduler.run_ordered(
            [lambda: thread_ids.add(threading.get_ident())] * 4)
        assert thread_ids == {threading.get_ident()}
        assert scheduler._pool is None
        scheduler.shutdown()

    def test_deadline_fires_mid_fanout_and_pool_stays_reusable(self):
        with MorselScheduler(2, morsel_rows=1) as scheduler:
            finished: list[int] = []

            def slow(i):
                def run():
                    time.sleep(0.03)
                    finished.append(i)
                    return i
                return run

            deadline = time.perf_counter() + 0.05
            with pytest.raises(MorselCancelled):
                scheduler.run_ordered([slow(i) for i in range(30)],
                                      deadline=deadline)
            # Pending tasks were cancelled, not leaked: far fewer than the
            # full batch ever ran.
            assert len(finished) < 30
            # The pool survives and keeps producing ordered, exact results.
            assert scheduler.run_ordered(
                [lambda i=i: i * i for i in range(40)]) \
                == [i * i for i in range(40)]

    def test_shutdown_is_idempotent_and_fences_new_work(self):
        scheduler = MorselScheduler(2)
        scheduler.run_ordered([lambda: 1, lambda: 2])
        scheduler.shutdown()
        scheduler.shutdown()
        with pytest.raises(RuntimeError):
            scheduler.run_ordered([lambda: 1, lambda: 2])

    def test_rejects_degenerate_configuration(self):
        with pytest.raises(ValueError):
            MorselScheduler(0)
        with pytest.raises(ValueError):
            MorselScheduler(2, morsel_rows=0)
        with pytest.raises(ValueError):
            Executor(build_differential_database(block_size=0), workers=0)


# ----------------------------------------------------------------------
# Property sweep: parallel == sequential across engine toggles
# ----------------------------------------------------------------------
def _run_pair(db, query, scheduler, fused=True, semijoin=True):
    """(sequential report, morsel report) for one query over ``db``."""
    sequential = make_algorithm("Default", db, fused_kernels=fused,
                                semijoin_pruning=semijoin)
    parallel = make_algorithm("Default", db, fused_kernels=fused,
                              semijoin_pruning=semijoin,
                              morsel_scheduler=scheduler)
    return sequential.run(query), parallel.run(query)


class TestMorselPropertySweep:
    #: (block_size, dict_encode, fused, semijoin, workers, morsel_rows).
    #: Tiny morsel sizes force dozens of morsels even on the small
    #: differential tables; block sizes 17/64 produce ragged final blocks
    #: and zone-map runs that do not align with morsel boundaries.
    CASES = [
        (0, True, True, True, 4, 16),
        (0, False, False, False, 2, 37),
        (17, True, True, True, 3, 16),
        (17, True, False, True, 4, 5),
        (64, True, True, True, 4, 16),
        (64, False, True, False, 2, 64),
        (64, True, True, False, 3, 100),
        (256, True, False, False, 4, 23),
    ]

    @pytest.mark.parametrize(
        "block_size,dict_encode,fused,semijoin,workers,morsel_rows", CASES,
        ids=[f"bs{c[0]}-dict{int(c[1])}-fused{int(c[2])}-semi{int(c[3])}"
             f"-w{c[4]}-m{c[5]}" for c in CASES])
    def test_generated_queries_identical_under_morsels(
            self, block_size, dict_encode, fused, semijoin, workers,
            morsel_rows):
        db = build_differential_database(block_size=block_size,
                                         dict_encode=dict_encode)
        generator = make_stream(db, seed=SEED + block_size + workers)
        with MorselScheduler(workers, morsel_rows=morsel_rows) as scheduler:
            for index in range(12):
                query = generator.query_at(index)
                seq, par = _run_pair(db, query, scheduler,
                                     fused=fused, semijoin=semijoin)
                assert not seq.timed_out and not par.timed_out, index
                assert_results_match(
                    canonicalize_table(seq.final_table),
                    canonicalize_table(par.final_table),
                    context=f"morsel sweep bs={block_size} "
                            f"dict={dict_encode} fused={fused} "
                            f"semi={semijoin} w={workers} m={morsel_rows} "
                            f"index={index} [{query.name}]")

    def test_all_pruned_and_impossible_scans(self):
        """Zone maps pruning every block (and dictionary-impossible
        predicates) must yield empty selections identically with and
        without the fan-out."""
        db = build_differential_database(block_size=64)
        cases = [
            (Comparison(ColumnRef("movie", "year"), ">", 5000), "movie"),
            (Comparison(ColumnRef("movie", "kind"), "=", "no-such-kind"),
             "movie"),
            (Comparison(ColumnRef("cast_info", "salary"), "<", -1.0),
             "cast_info"),
        ]
        with MorselScheduler(4, morsel_rows=16) as scheduler:
            for predicate, table_name in cases:
                plan = PhysicalPlan(
                    query_name="all-pruned",
                    root=ScanNode(
                        relation=RelationRef.base(table_name, table_name),
                        filters=(predicate,)),
                    output_columns=(ColumnRef(table_name, "id"),))
                seq = Executor(db).execute(plan)
                par = Executor(db, morsel_scheduler=scheduler).execute(plan)
                assert seq.table.num_rows == 0
                assert par.table.num_rows == 0

    def test_deleted_row_masks_from_mutations(self):
        """PR 7 mutations (append/delete batches leaving holes in the
        valid mask, ragged appended tail blocks) replayed under morsels."""
        from tests.test_dynamic import mutate_randomly

        db = build_differential_database()
        rng = np.random.default_rng(SEED + 9)
        mutate_randomly(db, rng, "cast_info", batches=3)
        mutate_randomly(db, rng, "movie_kw", batches=2)
        generator = make_stream(db, seed=SEED + 9)
        with MorselScheduler(4, morsel_rows=16) as scheduler:
            for index in range(20):
                query = generator.query_at(index)
                seq, par = _run_pair(db, query, scheduler)
                assert_results_match(
                    canonicalize_table(seq.final_table),
                    canonicalize_table(par.final_table),
                    context=f"mutated morsel sweep index={index} "
                            f"[{query.name}]")


# ----------------------------------------------------------------------
# Counter conservation (the race the satellite fix targets)
# ----------------------------------------------------------------------
class TestCounterConservation:
    def _scan_plan(self):
        return PhysicalPlan(
            query_name="counter-scan",
            root=ScanNode(
                relation=RelationRef.base("cast_info", "cast_info"),
                filters=(Comparison(ColumnRef("cast_info", "salary"),
                                    ">", 1e4),
                         Comparison(ColumnRef("cast_info", "note"),
                                    "!=", "(voice)"))),
            output_columns=(ColumnRef("cast_info", "id"),))

    def test_parallel_counters_equal_sequential_exactly(self):
        db = build_differential_database(block_size=64)
        plan = self._scan_plan()
        sequential = Executor(db).execute(plan)
        with MorselScheduler(4, morsel_rows=16) as scheduler:
            parallel = Executor(db, morsel_scheduler=scheduler).execute(plan)
        # Bit-identical selection, exact counter sums: per-morsel local
        # accumulation merged by the coordinator loses nothing.
        np.testing.assert_array_equal(sequential.table.column("cast_info.id"),
                                      parallel.table.column("cast_info.id"))
        assert parallel.fused_rows_touched == sequential.fused_rows_touched
        assert parallel.fused_rows_touched > 0
        assert parallel.semijoin_pruned_rows == sequential.semijoin_pruned_rows
        assert parallel.scan_blocks_total == sequential.scan_blocks_total
        assert parallel.scan_blocks_pruned == sequential.scan_blocks_pruned

    def test_morsel_accounting_matches_scheduler_arithmetic(self):
        db = build_differential_database(block_size=0)  # one full-table range
        table_rows = db.table("cast_info").num_rows
        morsel_rows = 16
        plan = self._scan_plan()
        with MorselScheduler(4, morsel_rows=morsel_rows) as scheduler:
            expected_morsels = len(scheduler.split_ranges([(0, table_rows)]))
            result = Executor(db, morsel_scheduler=scheduler).execute(plan)
        assert result.morsel_workers == 4
        assert result.morsels_total == expected_morsels
        assert result.parallel_scan_rows == table_rows
        # Sequential executions leave all three at their defaults.
        sequential = Executor(db).execute(plan)
        assert sequential.morsels_total == 0
        assert sequential.morsel_workers == 1
        assert sequential.parallel_scan_rows == 0

    def test_merge_into_is_additive(self):
        counters = MorselCounters(fused_rows_touched=3,
                                  semijoin_pruned_rows=2)
        sink = MorselCounters(fused_rows_touched=10, semijoin_pruned_rows=1)
        counters.merge_into(sink)
        assert sink.fused_rows_touched == 13
        assert sink.semijoin_pruned_rows == 3


# ----------------------------------------------------------------------
# Cancellation storm (shared scheduler, timeouts mid-fanout)
# ----------------------------------------------------------------------
class TestCancellationStorm:
    N_THREADS = 6
    QUERIES_PER_THREAD = 10

    def test_timeout_storm_leaves_shared_pool_reusable(self):
        """Many runners over one scheduler with a sub-millisecond budget:
        timeouts (including :class:`MorselCancelled` from mid-fanout
        deadlines) must surface as ``report.timed_out``, never as an
        escaped exception, and after the storm the same scheduler must
        still produce results identical to the sequential engine with
        exact counter sums."""
        db = build_differential_database()
        scheduler = MorselScheduler(4, morsel_rows=8)
        barrier = threading.Barrier(self.N_THREADS)
        failures: list[str] = []
        timed_out = [0] * self.N_THREADS

        def worker(thread_id: int) -> None:
            session = db.session_view()
            runner = make_algorithm("Default", session,
                                    timeout_seconds=0.0005,
                                    morsel_scheduler=scheduler)
            generator = make_stream(session, seed=SEED + thread_id)
            barrier.wait()
            for index in range(self.QUERIES_PER_THREAD):
                try:
                    report = runner.run(generator.query_at(index))
                except Exception as exc:  # noqa: BLE001 — the assertion target
                    failures.append(f"thread {thread_id} query {index}: "
                                    f"{type(exc).__name__}: {exc}")
                    return
                if report.timed_out:
                    timed_out[thread_id] += 1

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert not failures, failures
            assert sum(timed_out) > 0, "storm never hit a timeout"

            # The pool survived the storm: full-budget queries through the
            # same scheduler still match the sequential engine bit for bit,
            # and the conserved counters still sum exactly.
            generator = make_stream(db, seed=SEED + 99)
            for index in range(5):
                query = generator.query_at(index)
                seq, par = _run_pair(db, query, scheduler)
                assert not par.timed_out, index
                assert_results_match(
                    canonicalize_table(seq.final_table),
                    canonicalize_table(par.final_table),
                    context=f"post-storm index={index} [{query.name}]")
        finally:
            scheduler.shutdown()

    def test_executor_deadline_cancels_and_clears(self):
        """A deadline in the past aborts the fan-out with MorselCancelled;
        clearing it restores exact execution on the same executor."""
        db = build_differential_database(block_size=0)
        plan = PhysicalPlan(
            query_name="deadline-scan",
            root=ScanNode(
                relation=RelationRef.base("cast_info", "cast_info"),
                filters=(Comparison(ColumnRef("cast_info", "salary"),
                                    ">", 0.0),)),
            output_columns=(ColumnRef("cast_info", "id"),))
        with MorselScheduler(4, morsel_rows=8) as scheduler:
            executor = Executor(db, morsel_scheduler=scheduler)
            executor.deadline = time.perf_counter() - 1.0
            with pytest.raises(MorselCancelled):
                executor.execute(plan)
            executor.deadline = None
            result = executor.execute(plan)
            np.testing.assert_array_equal(
                result.table.column("cast_info.id"),
                Executor(db).execute(plan).table.column("cast_info.id"))
