"""Differential correctness: vectorized engine vs. row-at-a-time oracle.

Two acceptance-grade test families for this PR's test subsystem:

* **Differential oracle** -- 200 seeded ``sqlgen`` queries are executed by
  the vectorized engine (through the ``Default`` baseline: real optimizer,
  real executor, zone-map pruned scans) and by the independent reference
  evaluator in ``tests/reference_eval.py``; any row-count or aggregate
  mismatch fails with the reproducing ``(seed, index)`` pair.
* **Cross-policy equivalence** -- every registered re-optimization policy
  must return identical *results* (not just comparable timings) on a
  50-query generated stream, with and without the cross-policy subplan
  cache enabled.  Counts, group keys, and min/max aggregates must match
  exactly; float sums/averages within 1e-9 relative (different join orders
  legitimately re-associate float additions).

The database is a dedicated small movie-ish instance (FK graph with shared
dimensions, int/float/string columns, clustered and unclustered data) so
the whole module stays fast enough for tier-1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.schema import Column, ForeignKey, Schema, TableSchema
from repro.catalog.types import DataType
from repro.executor.subplan_cache import SubplanCache
from repro.reopt.registry import REOPT_ALGORITHMS, make_algorithm
from repro.storage.database import Database, IndexConfig
from repro.storage.table import DataTable
from repro.workloads.sqlgen import (
    AggregateSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    RandomQueryGenerator,
)
from tests.reference_eval import (
    assert_results_match,
    canonicalize_table,
    reference_execute,
)

SEED = 20260729

DIFF_SCHEMA = Schema([
    TableSchema("movie", [Column("id", DataType.INT),
                          Column("year", DataType.INT),
                          Column("rating", DataType.FLOAT),
                          Column("kind", DataType.STRING)],
                primary_key="id"),
    TableSchema("keyword", [Column("id", DataType.INT),
                            Column("kw", DataType.STRING)],
                primary_key="id"),
    TableSchema("person", [Column("id", DataType.INT),
                           Column("age", DataType.INT),
                           Column("gender", DataType.STRING)],
                primary_key="id"),
    TableSchema("movie_kw", [Column("id", DataType.INT),
                             Column("movie_id", DataType.INT),
                             Column("keyword_id", DataType.INT),
                             Column("weight", DataType.FLOAT)],
                primary_key="id",
                foreign_keys=[ForeignKey("movie_id", "movie", "id"),
                              ForeignKey("keyword_id", "keyword", "id")]),
    TableSchema("cast_info", [Column("id", DataType.INT),
                              Column("movie_id", DataType.INT),
                              Column("person_id", DataType.INT),
                              Column("salary", DataType.FLOAT),
                              Column("note", DataType.STRING)],
                primary_key="id",
                foreign_keys=[ForeignKey("movie_id", "movie", "id"),
                              ForeignKey("person_id", "person", "id")]),
])


def build_differential_database(seed: int = SEED,
                                block_size: int = 64,
                                dict_encode: bool = True) -> Database:
    """Small, null-free database with a shared-dimension FK graph.

    ``block_size=64`` deliberately makes many blocks, so the zone-map
    pruning path is exercised by almost every generated filter.
    ``dict_encode=False`` stores string columns raw (the pre-dictionary
    baseline representation).
    """
    rng = np.random.default_rng(seed)
    n_movie, n_kw, n_person, n_mk, n_ci = 150, 25, 80, 500, 700
    db = Database(DIFF_SCHEMA, index_config=IndexConfig.PK_FK,
                  block_size=block_size, dict_encode=dict_encode)
    db.load_table(DataTable("movie", {
        "id": np.arange(1, n_movie + 1),
        "year": rng.integers(1960, 2026, n_movie),
        "rating": np.round(rng.uniform(1.0, 10.0, n_movie), 3),
        "kind": rng.choice(np.array(["movie", "tv", "short", "doc"],
                                    dtype=object), n_movie),
    }))
    db.load_table(DataTable("keyword", {
        "id": np.arange(1, n_kw + 1),
        "kw": np.array([f"kw_{i:03d}" for i in range(n_kw)], dtype=object),
    }))
    db.load_table(DataTable("person", {
        "id": np.arange(1, n_person + 1),
        "age": rng.integers(15, 90, n_person),
        "gender": rng.choice(np.array(["m", "f", "x"], dtype=object), n_person),
    }))
    db.load_table(DataTable("movie_kw", {
        "id": np.arange(1, n_mk + 1),
        "movie_id": rng.integers(1, n_movie + 1, n_mk),
        "keyword_id": rng.integers(1, n_kw + 1, n_mk),
        "weight": np.round(rng.uniform(0.0, 1.0, n_mk), 3),
    }))
    db.load_table(DataTable("cast_info", {
        "id": np.arange(1, n_ci + 1),
        "movie_id": rng.integers(1, n_movie + 1, n_ci),
        "person_id": rng.integers(1, n_person + 1, n_ci),
        "salary": np.round(rng.uniform(1e3, 1e6, n_ci), 2),
        "note": rng.choice(np.array(["", "(voice)", "(producer)", "(uncredited)"],
                                    dtype=object), n_ci),
    }))
    return db


@pytest.fixture(scope="module")
def diff_db() -> Database:
    return build_differential_database()


@pytest.fixture(scope="module")
def plain_db() -> Database:
    """The same data with every hot-path acceleration representation off."""
    return build_differential_database(dict_encode=False)


def make_stream(db: Database, seed: int = SEED) -> RandomQueryGenerator:
    return RandomQueryGenerator(
        db, seed=seed,
        join_config=JoinSamplerConfig(max_joins=3, min_joins=0, fk_only=False),
        predicate_config=PredicateSamplerConfig(max_predicates=3),
        aggregate_config=AggregateSamplerConfig(group_by_probability=0.3),
        name_prefix="diff",
    )


class TestDifferentialOracle:
    @pytest.mark.parametrize("accelerated", [False, True],
                             ids=["hotpath-off", "hotpath-on"])
    def test_200_generated_queries_match_reference(self, diff_db, plain_db,
                                                   accelerated):
        """Two passes over the same 200-query stream: the naive engine
        (raw strings, per-predicate scan loop, no semijoin pushdown) and
        the full hot path (dictionary codes + fused kernels + Bloom/
        semijoin pruning) must both match the row-at-a-time oracle --
        which also makes the two engine configurations transitively
        equivalent on every query."""
        db = diff_db if accelerated else plain_db
        generator = make_stream(db)
        runner = make_algorithm("Default", db,
                                fused_kernels=accelerated,
                                semijoin_pruning=accelerated)
        for index in range(200):
            query = generator.query_at(index)
            expected = reference_execute(db, query)
            report = runner.run(query)
            assert report.final_table is not None, (SEED, index)
            actual = canonicalize_table(report.final_table)
            assert_results_match(
                expected, actual,
                context=f"query (seed={SEED}, index={index}, "
                        f"accelerated={accelerated}) [{query.name}]")

    def test_oracle_catches_an_injected_fault(self, diff_db):
        """Sanity: the harness is actually able to fail (no vacuous pass)."""
        generator = make_stream(diff_db)
        query = generator.query_at(0)
        expected = reference_execute(diff_db, query)
        broken = {key: dict(values, row_count=values["row_count"] + 1)
                  for key, values in expected.items()}
        with pytest.raises(AssertionError):
            assert_results_match(broken, {k: dict(v) for k, v in expected.items()},
                                 context="injected")


class TestDifferentialAfterMutations:
    def test_generated_queries_match_reference_on_a_mutated_database(self):
        """Replay of the differential suite after random append/delete
        batches: the vectorized engine over a mutated table (valid-row
        masks, grown dictionaries, incrementally extended zone maps, stale
        statistics) must still match the row-at-a-time oracle, which reads
        the valid mask directly."""
        from tests.test_dynamic import mutate_randomly

        db = build_differential_database()
        rng = np.random.default_rng(SEED + 2)
        mutate_randomly(db, rng, "cast_info", batches=3)
        mutate_randomly(db, rng, "movie_kw", batches=2)
        generator = make_stream(db, seed=SEED + 2)
        runner = make_algorithm("Default", db)
        for index in range(60):
            query = generator.query_at(index)
            expected = reference_execute(db, query)
            report = runner.run(query)
            assert report.final_table is not None, (SEED + 2, index)
            assert_results_match(
                expected, canonicalize_table(report.final_table),
                context=f"mutated differential (seed={SEED + 2}, "
                        f"index={index}) [{query.name}]")


class TestMorselDifferential:
    def test_200_generated_queries_identical_at_1_and_4_workers(self, diff_db):
        """Two passes over the full 200-query stream: ``workers=1``
        (inline, no pool) vs. ``workers=4`` over a tiny-morsel scheduler
        that forces every scan and probe to fan out into many morsels.
        The merged results must match query by query -- the morsel layer
        may never change an answer, only its wall-clock."""
        from repro.executor.morsels import MorselScheduler

        generator = make_stream(diff_db)
        sequential = make_algorithm("Default", diff_db, workers=1)
        with MorselScheduler(4, morsel_rows=100) as scheduler:
            parallel = make_algorithm("Default", diff_db,
                                      morsel_scheduler=scheduler)
            for index in range(200):
                query = generator.query_at(index)
                expected_report = sequential.run(query)
                actual_report = parallel.run(query)
                assert not expected_report.timed_out, (SEED, index)
                assert not actual_report.timed_out, (SEED, index)
                assert_results_match(
                    canonicalize_table(expected_report.final_table),
                    canonicalize_table(actual_report.final_table),
                    context=f"morsel differential (seed={SEED}, "
                            f"index={index}, workers=1 vs 4) [{query.name}]")


class TestCrossPolicyEquivalence:
    POLICIES = REOPT_ALGORITHMS + ("Default",)

    def test_all_policies_bitwise_equal_with_and_without_cache(self, diff_db):
        generator = make_stream(diff_db, seed=SEED + 1)
        queries = generator.generate(50)
        reference: list = [None] * len(queries)

        shared_cache = SubplanCache()
        for policy in self.POLICIES:
            for cache in (None, shared_cache):
                runner = make_algorithm(policy, diff_db, subplan_cache=cache)
                for index, query in enumerate(queries):
                    report = runner.run(query)
                    assert not report.timed_out, (policy, index)
                    result = canonicalize_table(report.final_table)
                    if reference[index] is None:
                        reference[index] = result
                    else:
                        assert_results_match(
                            reference[index], result,
                            context=f"policy {policy} "
                                    f"(cache={'shared' if cache else 'off'}, "
                                    f"seed={SEED + 1}, index={index})")
        # The shared cache must have been exercised, not bypassed.
        assert shared_cache.hits > 0
