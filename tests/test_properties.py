"""Property-based tests (hypothesis) on the core invariants.

* equi-join primitives agree with a brute-force reference on arbitrary key
  arrays;
* every QSA strategy produces a covering subquery set for randomly generated
  join queries over the tiny schema (Definition 1);
* QuerySplit produces the same result as direct plan execution for randomly
  generated SPJ queries (Theorem 1);
* histogram selectivities are valid probabilities and monotone;
* the plan-similarity score is symmetric and bounded by the relation count.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.statistics import Histogram
from repro.core.qsa import QSAStrategy, generate_subqueries
from repro.core.splitter import QuerySplitConfig, QuerySplitExecutor
from repro.core.ssa import CostFunction
from repro.core.subquery import covers
from repro.executor.executor import Executor
from repro.executor.joins import equi_join_indices, join_result_size
from repro.optimizer.optimizer import Optimizer
from repro.plan.expressions import ColumnRef, Comparison, JoinPredicate
from repro.plan.logical import AggregateSpec, Query, RelationRef, SPJQuery
from repro.plan.similarity import plan_similarity
from tests.conftest import build_tiny_database

# ----------------------------------------------------------------------
# Join primitives
# ----------------------------------------------------------------------
keys = st.lists(st.integers(min_value=0, max_value=12), min_size=0, max_size=60)


@given(left=keys, right=keys)
@settings(max_examples=60, deadline=None)
def test_equi_join_matches_bruteforce(left, right):
    left_arr = np.array(left, dtype=np.int64)
    right_arr = np.array(right, dtype=np.int64)
    li, ri = equi_join_indices(left_arr, right_arr)
    expected = {(i, j) for i, lv in enumerate(left) for j, rv in enumerate(right)
                if lv == rv}
    assert {(int(a), int(b)) for a, b in zip(li, ri)} == expected
    assert join_result_size(left_arr, right_arr) == len(expected)


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), min_size=2, max_size=300),
       probe=st.floats(min_value=-2e6, max_value=2e6, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_histogram_selectivity_is_probability(values, probe):
    hist = Histogram.from_values(np.array(values))
    if hist is None:
        return
    sel = hist.selectivity_le(probe)
    assert 0.0 <= sel <= 1.0
    assert hist.selectivity_range(None, None) == 1.0


# ----------------------------------------------------------------------
# Random query generation over the tiny schema
# ----------------------------------------------------------------------
_JOINS = {
    ("mk", "t"): ("movie_id", "id"),
    ("mk", "k"): ("keyword_id", "id"),
    ("ci", "t"): ("movie_id", "id"),
    ("ci", "n"): ("person_id", "id"),
    ("ci", "mk"): ("movie_id", "movie_id"),
}
_FILTERS = {
    "t": Comparison(ColumnRef("t", "year"), ">", 2005),
    "k": Comparison(ColumnRef("k", "kw"), "<", "kw_020"),
    "n": Comparison(ColumnRef("n", "gender"), "=", "m"),
    "ci": Comparison(ColumnRef("ci", "note"), "=", "(voice)"),
    "mk": Comparison(ColumnRef("mk", "keyword_id"), "<=", 20),
}


@st.composite
def random_spj(draw):
    """A random connected SPJ query over the tiny schema."""
    edges = draw(st.lists(st.sampled_from(sorted(_JOINS)), min_size=1, max_size=5,
                          unique=True))
    aliases = sorted({a for pair in edges for a in pair})
    # Keep only edges forming a connected graph rooted at the first alias.
    connected = {aliases[0]}
    kept = []
    changed = True
    while changed:
        changed = False
        for pair in edges:
            if pair in kept:
                continue
            if pair[0] in connected or pair[1] in connected:
                kept.append(pair)
                connected.update(pair)
                changed = True
    aliases = sorted(connected)
    filters = tuple(_FILTERS[a] for a in aliases if draw(st.booleans()))
    joins = tuple(
        JoinPredicate(ColumnRef(left, _JOINS[(left, right)][0]),
                      ColumnRef(right, _JOINS[(left, right)][1]))
        for left, right in kept)
    return SPJQuery(
        name="random",
        relations=tuple(RelationRef.base(a, a) for a in aliases),
        filters=filters,
        join_predicates=joins,
        aggregates=(AggregateSpec("count", None, "cnt"),),
    )


@pytest.fixture(scope="module")
def prop_db(tiny_schema):
    return build_tiny_database(tiny_schema, seed=5)


@given(spj=random_spj(), strategy=st.sampled_from(list(QSAStrategy)))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_qsa_always_covers(tiny_schema, spj, strategy):
    subqueries = generate_subqueries(spj, tiny_schema, strategy)
    assert covers(subqueries, spj)


@given(spj=random_spj(),
       strategy=st.sampled_from(list(QSAStrategy)),
       cost_function=st.sampled_from([CostFunction.PHI1, CostFunction.PHI4,
                                      CostFunction.PHI5]))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_querysplit_matches_direct_execution(prop_db, spj, strategy, cost_function):
    """Theorem 1: QuerySplit's answer equals the original query's answer."""
    expected = Executor(prop_db).execute(Optimizer(prop_db).plan(spj)).table.to_rows()
    config = QuerySplitConfig(qsa_strategy=strategy, cost_function=cost_function)
    runner = QuerySplitExecutor(prop_db, Optimizer(prop_db), config=config)
    report = runner.run(Query.from_spj(spj))
    assert report.final_table.to_rows() == expected


@given(spj=random_spj())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_similarity_symmetric_and_bounded(prop_db, spj):
    plan_a = Optimizer(prop_db).plan(spj)
    plan_b = Optimizer(prop_db).plan(spj)
    score = plan_similarity(plan_a, plan_b)
    assert score == plan_similarity(plan_b, plan_a)
    assert 0 <= score <= len(spj.relations)


@given(spj=random_spj())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_substitution_drops_only_internal_predicates(prop_db, spj):
    """Substituting a temp covering some aliases never loses external predicates."""
    aliases = sorted(spj.covered_aliases())
    if len(aliases) < 2:
        return
    covered = frozenset(aliases[:2])
    temp = RelationRef.temp("__temp_x", covered)
    rewritten = spj.substitute(temp)
    kept = set(rewritten.join_predicates)
    for pred in spj.join_predicates:
        internal = all(alias in covered for alias in pred.aliases())
        assert (pred not in kept) == internal or not internal
