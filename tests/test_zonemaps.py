"""Zone-map correctness tests: pruning is conservative, and sharp.

The single invariant the block-pruning layer must uphold is
**conservativeness**: a block containing *any* row that satisfies a
predicate must survive :meth:`TableZoneMaps.candidate_blocks`.  The
property-style sweep below checks it over random arrays of every supported
dtype (ints, floats with NaN, strings with None), random block sizes
(including size 1 and single-value blocks), and every predicate shape the
pruner understands — by comparing against the vectorized evaluation
itself.  The flip side (unsatisfiable predicates prune *everything*) and
the executor-level guarantee (a pruned Scan emits the identical row-id
vector) are covered separately.
"""

import numpy as np
import pytest

from repro.plan.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNotNull,
    OrPredicate,
    StringContains,
    StringPrefix,
)
from repro.storage.table import DataTable
from repro.storage.zonemaps import TableZoneMaps

REF = ColumnRef("t", "c")


def _zone_maps(values: np.ndarray, block_size: int) -> TableZoneMaps:
    return TableZoneMaps.build({"c": values}, block_size)


def _surviving_rows(zone_maps: TableZoneMaps, predicates) -> set[int]:
    """Row ids inside blocks the pruner keeps."""
    mask = zone_maps.candidate_blocks(predicates, lambda ref: ref.column)
    rows: set[int] = set()
    for block in np.nonzero(mask)[0]:
        start, stop = zone_maps.block_bounds(int(block))
        rows.update(range(start, stop))
    return rows


def _matching_rows(values: np.ndarray, predicates) -> set[int]:
    mask = predicates[0].evaluate(lambda ref: values)
    for pred in predicates[1:]:
        mask = mask & pred.evaluate(lambda ref: values)
    return set(np.nonzero(mask)[0].tolist())


def assert_conservative(values: np.ndarray, predicates, block_size: int):
    zone_maps = _zone_maps(values, block_size)
    missed = _matching_rows(values, predicates) - _surviving_rows(
        zone_maps, predicates)
    assert not missed, (
        f"pruning dropped qualifying rows {sorted(missed)[:5]} for "
        f"{predicates} at block_size={block_size}")


# ----------------------------------------------------------------------
# Random data generators per dtype
# ----------------------------------------------------------------------
def _random_ints(rng, n):
    return rng.integers(-50, 50, n)


def _random_floats(rng, n):
    values = rng.normal(0.0, 30.0, n)
    values[rng.random(n) < 0.15] = np.nan
    return values


def _random_strings(rng, n):
    pool = np.array([f"s_{i:03d}" for i in range(40)] + [None] * 6,
                    dtype=object)
    return rng.choice(pool, n)


def _random_predicates(rng, values):
    """Sample predicate shapes valid for the dtype of ``values``."""
    non_null = [v for v in values
                if v is not None and not (isinstance(v, float) and np.isnan(v))]
    preds = [IsNotNull(REF)]
    if values.dtype == object:
        strings = [v for v in non_null if isinstance(v, str)] or ["s_000"]
        pick = lambda: strings[int(rng.integers(len(strings)))]
        preds += [
            Comparison(REF, "=", pick()),
            Comparison(REF, "!=", pick()),
            InList(REF, (pick(), pick(), "zz_missing")),
            StringPrefix(REF, pick()[:int(rng.integers(1, 4))]),
            StringContains(REF, pick()[2:4]),
            OrPredicate((Comparison(REF, "=", pick()),
                         StringPrefix(REF, pick()[:2]))),
        ]
    else:
        lo, hi = float(rng.uniform(-60, 40)), float(rng.uniform(-40, 60))
        point = (int(rng.integers(-55, 55)) if values.dtype.kind == "i"
                 else float(rng.uniform(-60, 60)))
        preds += [
            Comparison(REF, str(rng.choice(["=", "!=", "<", "<=", ">", ">="])),
                       point),
            Between(REF, min(lo, hi), max(lo, hi)),
            InList(REF, (point, point + 1, point - 17)),
            OrPredicate((Comparison(REF, "<", lo),
                         Comparison(REF, ">", hi))),
        ]
    count = int(rng.integers(1, 3))
    picked = rng.choice(len(preds), size=min(count, len(preds)), replace=False)
    return tuple(preds[int(i)] for i in picked)


class TestConservativeness:
    @pytest.mark.parametrize("make_values", [
        _random_ints, _random_floats, _random_strings,
    ], ids=["int", "float-nan", "string-null"])
    def test_pruning_never_drops_qualifying_rows(self, make_values):
        rng = np.random.default_rng(20260729)
        for trial in range(60):
            n = int(rng.integers(1, 400))
            values = make_values(rng, n)
            block_size = int(rng.choice([1, 3, 16, 64, 128, 1000]))
            predicates = _random_predicates(rng, values)
            assert_conservative(values, predicates, block_size)

    def test_single_value_blocks(self):
        values = np.repeat(np.array([7, 7, 7, 9], dtype=np.int64), 8)
        zone_maps = _zone_maps(values, 8)
        lookup = lambda ref: ref.column
        # "!=" prunes the constant blocks equal to the literal (distinct-ness
        # flag) but keeps the others; "=" does the reverse.
        ne = zone_maps.candidate_blocks((Comparison(REF, "!=", 7),), lookup)
        assert list(ne) == [False, False, False, True]
        eq = zone_maps.candidate_blocks((Comparison(REF, "=", 9),), lookup)
        assert list(eq) == [False, False, False, True]

    def test_all_null_blocks(self):
        values = np.concatenate([np.full(8, np.nan), np.arange(8.0)])
        zone_maps = _zone_maps(values, 8)
        lookup = lambda ref: ref.column
        not_null = zone_maps.candidate_blocks((IsNotNull(REF),), lookup)
        assert list(not_null) == [False, True]
        # NaN != literal is True, so the all-NaN block must survive "!=".
        assert_conservative(values, (Comparison(REF, "!=", 3.0),), 8)
        eq = zone_maps.candidate_blocks((Comparison(REF, "=", 3.0),), lookup)
        assert list(eq) == [False, True]


class TestUnsatisfiablePredicates:
    def test_everything_pruned(self):
        values = np.arange(100, dtype=np.int64)
        zone_maps = _zone_maps(values, 16)
        lookup = lambda ref: ref.column
        unsatisfiable = [
            (Comparison(REF, "=", 1000),),
            (Comparison(REF, "<", -1),),
            (Between(REF, 60, 40),),                      # inverted range
            (InList(REF, (-5, 500)),),
            (Between(REF, 0, 10), Comparison(REF, ">", 50)),  # contradiction
        ]
        for predicates in unsatisfiable:
            mask = zone_maps.candidate_blocks(predicates, lookup)
            assert not mask.any(), predicates

    def test_string_prefix_outside_range_pruned(self):
        values = np.array([f"m_{i:02d}" for i in range(64)], dtype=object)
        zone_maps = _zone_maps(values, 16)
        lookup = lambda ref: ref.column
        mask = zone_maps.candidate_blocks((StringPrefix(REF, "zz"),), lookup)
        assert not mask.any()
        mask = zone_maps.candidate_blocks((StringPrefix(REF, "a"),), lookup)
        assert not mask.any()


class TestScanEquivalence:
    def test_pruned_scan_emits_identical_row_ids(self, tiny_schema):
        """End to end: the Scan operator's selection vector is bit-identical
        across block sizes (pruning on, off, tiny blocks)."""
        from tests.conftest import build_tiny_database

        from repro.executor.chunk import MaterializationStats
        from repro.executor.operators import ExecContext, Scan
        from repro.plan.logical import RelationRef
        from repro.plan.physical import ScanNode

        # ``ci.id`` is clustered (sequential), so small blocks really prune.
        filters = (Comparison(ColumnRef("ci", "id"), "<=", 40),
                   StringPrefix(ColumnRef("ci", "note"), "(v"))
        node = ScanNode(relation=RelationRef.base("ci", "ci"), filters=filters)

        def scan_ids(block_size):
            db = build_tiny_database(tiny_schema)
            db.table("ci").build_zone_maps(block_size)
            ctx = ExecContext(database=db, stats=MaterializationStats(),
                              needed=frozenset())
            chunk = Scan(node).execute(ctx)
            return chunk.sources[0].row_ids, ctx

        baseline, _ = scan_ids(0)
        for block_size in (1, 13, 256, 4096):
            row_ids, ctx = scan_ids(block_size)
            assert np.array_equal(row_ids, baseline), block_size
            assert ctx.scan_blocks_total > 0
        # Tiny blocks over a filtered scan must actually prune something.
        _, ctx = scan_ids(13)
        assert ctx.scan_blocks_pruned > 0
