"""Docs-consistency tests: referenced documents exist; examples stay runnable.

The same check runs as a dedicated CI step (see .github/workflows/ci.yml);
running it in tier-1 too means a dangling documentation pointer fails
locally before a PR is even opened.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_markdown_references_resolve():
    check_docs = _load_check_docs()
    missing = check_docs.find_missing_references(REPO_ROOT)
    assert missing == [], (
        "dangling Markdown references: "
        + ", ".join(f"{path.name} -> {ref}" for path, ref in missing))


def test_registered_experiments_documented_in_experiments_md():
    check_docs = _load_check_docs()
    undocumented = check_docs.find_undocumented_experiments(REPO_ROOT)
    assert undocumented == [], (
        "experiments registered but missing from EXPERIMENTS.md: "
        + ", ".join(undocumented))


def test_core_documents_exist():
    for name in ("README.md", "ARCHITECTURE.md", "EXPERIMENTS.md", "ROADMAP.md"):
        assert (REPO_ROOT / name).is_file(), f"{name} is missing"


def test_examples_are_importable():
    """Every example script must at least compile (CI runs quickstart fully)."""
    for script in sorted((REPO_ROOT / "examples").glob("*.py")):
        source = script.read_text(encoding="utf-8")
        compile(source, str(script), "exec")
