"""Fused-kernel, dictionary-translation, and semijoin pruning correctness.

The compiled scan hot path (this PR's tentpole) must be **observationally
invisible**: every acceleration layer -- selectivity-ordered fused predicate
evaluation, code-space predicate translation over dictionary-encoded
strings, and join-side Bloom/semijoin pushdown -- has to produce row-id
vectors bit-identical to the naive engine it replaces.  The tests here
check each layer in isolation (property-style sweeps against the naive
per-predicate conjunction, mirroring ``tests/test_zonemaps.py``) and then
end to end through the Scan operator and a full hash-join plan, plus the
two satellite regressions (``InList`` literal coercion and dtype-aware
ANALYZE null handling).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.analyze import analyze_columns, analyze_table
from repro.executor.chunk import MaterializationStats
from repro.executor.executor import Executor
from repro.executor.kernels import (
    EXACT_THRESHOLD,
    BloomFilter,
    PredicateCompiler,
    SemiJoinPredicate,
    build_semijoin_predicate,
    selectivity_rank,
)
from repro.executor.operators import ExecContext, Scan
from repro.optimizer.optimizer import Optimizer
from repro.plan.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNotNull,
    JoinPredicate,
    OrPredicate,
    StringContains,
    StringPrefix,
)
from repro.plan.logical import AggregateSpec, RelationRef, SPJQuery
from repro.plan.physical import ScanNode
from repro.catalog.schema import Column, ForeignKey, Schema, TableSchema
from repro.catalog.types import DataType
from repro.storage.database import Database, IndexConfig
from repro.storage.dictionary import translate_filters
from repro.storage.table import DataTable
from tests.test_zonemaps import _random_floats, _random_ints, _random_strings

SEED = 20260808


# ----------------------------------------------------------------------
# Random predicate sampling (per-column refs, multi-dtype tables)
# ----------------------------------------------------------------------
def _predicates_for(rng, ref: ColumnRef, values: np.ndarray) -> list:
    """Predicate shapes valid for one column, mirroring test_zonemaps."""
    non_null = [v for v in values
                if v is not None and not (isinstance(v, float) and np.isnan(v))]
    preds = [IsNotNull(ref)]
    if values.dtype == object:
        strings = [v for v in non_null if isinstance(v, str)] or ["s_000"]
        pick = lambda: strings[int(rng.integers(len(strings)))]
        preds += [
            Comparison(ref, "=", pick()),
            Comparison(ref, "!=", pick()),
            InList(ref, (pick(), pick(), "zz_missing")),
            StringPrefix(ref, pick()[:int(rng.integers(1, 4))]),
            StringContains(ref, pick()[2:4]),
            OrPredicate((Comparison(ref, "=", pick()),
                         StringPrefix(ref, pick()[:2]))),
        ]
    else:
        lo, hi = float(rng.uniform(-60, 40)), float(rng.uniform(-40, 60))
        point = (int(rng.integers(-55, 55)) if values.dtype.kind == "i"
                 else float(rng.uniform(-60, 60)))
        preds += [
            Comparison(ref, str(rng.choice(["=", "!=", "<", "<=", ">", ">="])),
                       point),
            Between(ref, min(lo, hi), max(lo, hi)),
            InList(ref, (point, point + 1, point - 17)),
            OrPredicate((Comparison(ref, "<", lo),
                         Comparison(ref, ">", hi))),
        ]
    return preds


def _naive_positions(predicates, resolve, length: int) -> np.ndarray:
    """The loop the fused kernel replaced: one full-range pass per predicate."""
    mask = np.ones(length, dtype=bool)
    for predicate in predicates:
        mask &= np.asarray(predicate.evaluate(resolve), dtype=bool)
    return np.nonzero(mask)[0].astype(np.int64, copy=False)


class TestFusedKernelEquivalence:
    def test_fused_matches_naive_conjunction(self):
        """Property sweep: random multi-dtype columns x random predicate
        sets -> fused row positions bit-identical to the naive loop."""
        rng = np.random.default_rng(SEED)
        makers = {"a": _random_ints, "b": _random_floats, "c": _random_strings}
        for trial in range(80):
            n = int(rng.integers(1, 400))
            columns = {name: np.asarray(make(rng, n))
                       for name, make in makers.items()}
            pool = []
            for name, values in columns.items():
                pool += _predicates_for(rng, ColumnRef("t", name), values)
            count = int(rng.integers(1, 6))
            picked = rng.choice(len(pool), size=min(count, len(pool)),
                                replace=False)
            predicates = tuple(pool[int(i)] for i in picked)
            resolve = lambda ref: columns[ref.column]
            expected = _naive_positions(predicates, resolve, n)
            actual = PredicateCompiler(predicates).evaluate_range(resolve, n)
            assert np.array_equal(actual, expected), (trial, predicates)

    def test_counters_accumulate(self):
        values = np.arange(100, dtype=np.int64)
        predicates = (Comparison(ColumnRef("t", "a"), "<", 50),
                      Comparison(ColumnRef("t", "a"), ">=", 10))
        ctx = ExecContext(database=None, stats=MaterializationStats(),
                          needed=frozenset())
        positions = PredicateCompiler(predicates).evaluate_range(
            lambda ref: values, 100, ctx)
        assert np.array_equal(positions, np.arange(10, 50))
        # One full pass (100 rows) + one pass over the survivors of the
        # more selective predicate, whichever the ranking ran first.
        assert ctx.fused_rows_touched > 100

    def test_selectivity_rank_orders_equality_first(self):
        ref = ColumnRef("t", "a")
        compiler = PredicateCompiler((IsNotNull(ref),
                                      Comparison(ref, "=", 3),
                                      Between(ref, 0, 10)))
        assert isinstance(compiler.predicates[0], Comparison)
        assert compiler.predicates[0].op == "="
        assert isinstance(compiler.predicates[-1], IsNotNull)
        assert selectivity_rank(Comparison(ref, "=", 3)) < selectivity_rank(
            Between(ref, 0, 10)) < selectivity_rank(IsNotNull(ref))


class TestDictionaryTranslation:
    def test_translated_filters_match_value_space(self):
        """Property sweep: code-space evaluation over the encoded column
        equals value-space evaluation over the raw strings."""
        rng = np.random.default_rng(SEED + 1)
        ref = ColumnRef("t", "c")
        for trial in range(80):
            n = int(rng.integers(1, 300))
            raw = _random_strings(rng, n)
            table = DataTable("t", {"c": raw.copy()})
            assert table.encode_strings() == ["c"]
            pool = _predicates_for(rng, ref, raw)
            count = int(rng.integers(1, 4))
            picked = rng.choice(len(pool), size=min(count, len(pool)),
                                replace=False)
            predicates = tuple(pool[int(i)] for i in picked)
            expected = _naive_positions(predicates, lambda _ref: raw, n)
            translated, impossible, _ = translate_filters(
                predicates, table, lambda r: r.column)
            if impossible:
                actual = np.empty(0, dtype=np.int64)
            else:
                codes = table.column("c")
                actual = _naive_positions(translated, lambda _ref: codes, n)
            assert np.array_equal(actual, expected), (trial, predicates)

    def test_absent_equality_is_proven_impossible(self):
        table = DataTable("t", {"c": np.array(["a", "b", None], dtype=object)})
        table.encode_strings()
        translated, impossible, count = translate_filters(
            (Comparison(ColumnRef("t", "c"), "=", "zz"),),
            table, lambda r: r.column)
        assert impossible and translated == ()
        assert count == 1

    def test_full_dictionary_match_still_excludes_nulls(self):
        """IN over every distinct value is IS NOT NULL, not a tautology."""
        raw = np.array(["a", "b", None, "a"], dtype=object)
        table = DataTable("t", {"c": raw.copy()})
        table.encode_strings()
        predicates = (InList(ColumnRef("t", "c"), ("a", "b")),)
        translated, impossible, _ = translate_filters(
            predicates, table, lambda r: r.column)
        assert not impossible and translated
        codes = table.column("c")
        actual = _naive_positions(translated, lambda _ref: codes, len(raw))
        assert np.array_equal(actual, np.array([0, 1, 3]))

    def test_string_predicates_prune_blocks_via_code_zone_maps(self):
        """A clustered encoded column prunes blocks for string equality."""
        schema = Schema([TableSchema(
            "s", [Column("id", DataType.INT), Column("grp", DataType.STRING)],
            primary_key="id")])
        n, per = 4096, 256
        grp = np.array([f"g_{i // per:02d}" for i in range(n)], dtype=object)
        db = Database(schema, index_config=IndexConfig.NONE, block_size=per)
        db.load_table(DataTable("s", {"id": np.arange(n), "grp": grp}))
        assert db.table("s").is_encoded("grp")
        node = ScanNode(relation=RelationRef.base("s", "s"),
                        filters=(Comparison(ColumnRef("s", "grp"), "=", "g_07"),))
        ctx = ExecContext(database=db, stats=MaterializationStats(),
                          needed=frozenset())
        chunk = Scan(node).execute(ctx)
        assert ctx.dict_predicates == 1
        assert ctx.scan_blocks_pruned == (n // per) - 1
        assert np.array_equal(chunk.sources[0].row_ids,
                              np.arange(7 * per, 8 * per))


class TestScanPathEquivalence:
    def test_scan_row_ids_identical_across_all_toggles(self, tiny_schema):
        """End to end through Scan: (dict on/off) x (fused on/off) all emit
        the same selection vector."""
        from tests.conftest import build_tiny_database

        filters = (Comparison(ColumnRef("ci", "id"), "<=", 1200),
                   StringPrefix(ColumnRef("ci", "note"), "(v"),
                   Comparison(ColumnRef("ci", "movie_id"), ">", 3))
        node = ScanNode(relation=RelationRef.base("ci", "ci"), filters=filters)

        def scan_ids(dict_encode, fused):
            db = build_tiny_database(tiny_schema, dict_encode=dict_encode)
            table = db.table("ci")
            assert table.is_encoded("note") == dict_encode
            table.build_zone_maps(64)
            ctx = ExecContext(database=db, stats=MaterializationStats(),
                              needed=frozenset(), fused=fused)
            chunk = Scan(node).execute(ctx)
            return chunk.sources[0].row_ids, ctx

        baseline, _ = scan_ids(dict_encode=False, fused=False)
        assert baseline.size > 0
        for dict_encode in (False, True):
            for fused in (False, True):
                row_ids, ctx = scan_ids(dict_encode, fused)
                assert np.array_equal(row_ids, baseline), (dict_encode, fused)
                if fused:
                    assert ctx.fused_predicates == len(filters)
                    assert ctx.fused_rows_touched > 0


# ----------------------------------------------------------------------
# Bloom filters and semijoin predicates
# ----------------------------------------------------------------------
class TestBloomFilter:
    def test_no_false_negatives(self):
        rng = np.random.default_rng(SEED + 2)
        keys = rng.integers(-10**12, 10**12, 5000)
        bloom = BloomFilter(np.unique(keys))
        assert bloom.contains(keys).all()

    def test_false_positive_rate_is_small(self):
        rng = np.random.default_rng(SEED + 3)
        members = np.unique(rng.integers(0, 10**9, 4000))
        bloom = BloomFilter(members)
        probes = rng.integers(10**9, 2 * 10**9, 20_000)  # disjoint range
        assert bloom.contains(probes).mean() < 0.05
        assert bloom.memory_bytes == bloom.num_bits // 8


class TestSemiJoinPredicate:
    def test_exact_mode_matches_isin(self):
        rng = np.random.default_rng(SEED + 4)
        build = rng.integers(0, 200, 150)
        probe = rng.integers(-50, 250, 3000)
        pred = build_semijoin_predicate(ColumnRef("f", "k"), build)
        assert pred.values is not None and pred.bloom is None
        mask = pred.evaluate(lambda ref: probe)
        assert np.array_equal(mask, np.isin(probe, build))

    def test_bloom_mode_has_no_false_negatives(self):
        rng = np.random.default_rng(SEED + 5)
        build = np.unique(rng.integers(0, 10**8, EXACT_THRESHOLD * 3))
        assert len(build) > EXACT_THRESHOLD
        probe = rng.integers(0, 10**8, 5000)
        pred = build_semijoin_predicate(ColumnRef("f", "k"), build)
        assert pred.bloom is not None and pred.values is None
        mask = pred.evaluate(lambda ref: probe)
        true_mask = np.isin(probe, build)
        assert (mask | ~true_mask).all()  # never drops a real match
        # The Between bounds cover the build key range (zone-map pruning).
        assert pred.low == int(build.min()) and pred.high == int(build.max())

    def test_empty_build_side_matches_nothing_and_prunes_everything(self):
        pred = build_semijoin_predicate(ColumnRef("f", "k"),
                                        np.empty(0, dtype=np.int64))
        probe = np.arange(100)
        assert not pred.evaluate(lambda ref: probe).any()
        assert pred.low > pred.high  # unsatisfiable Between: zones prune all


SEMI_SCHEMA = Schema([
    TableSchema("dim", [Column("id", DataType.INT),
                        Column("tag", DataType.STRING)], primary_key="id"),
    TableSchema("fact", [Column("id", DataType.INT),
                         Column("dim_id", DataType.INT),
                         Column("val", DataType.FLOAT)],
                primary_key="id",
                foreign_keys=[ForeignKey("dim_id", "dim", "id")]),
])


def _semi_database() -> Database:
    rng = np.random.default_rng(SEED + 6)
    n_dim, n_fact = 100, 6000
    db = Database(SEMI_SCHEMA, index_config=IndexConfig.NONE, block_size=512)
    db.load_table(DataTable("dim", {
        "id": np.arange(1, n_dim + 1),
        "tag": np.array([f"x_{i % 10}" for i in range(n_dim)], dtype=object),
    }))
    db.load_table(DataTable("fact", {
        "id": np.arange(1, n_fact + 1),
        "dim_id": rng.integers(1, n_dim + 1, n_fact),
        "val": rng.uniform(0, 1, n_fact),
    }))
    return db


class TestSemiJoinEndToEnd:
    def test_pushdown_prunes_probe_and_preserves_results(self):
        db = _semi_database()
        query = SPJQuery(
            name="semi",
            relations=(RelationRef.base("f", "fact"),
                       RelationRef.base("d", "dim")),
            filters=(Comparison(ColumnRef("d", "tag"), "=", "x_3"),),
            join_predicates=(JoinPredicate(ColumnRef("f", "dim_id"),
                                           ColumnRef("d", "id")),),
            aggregates=(AggregateSpec("count", None, "row_count"),),
        )
        plan = Optimizer(db).plan(query)

        on = Executor(db, semijoin=True).execute(plan)
        off = Executor(db, semijoin=False).execute(plan)
        assert on.table.to_rows() == off.table.to_rows()

        # Brute-force expected count.
        dim, fact = db.table("dim"), db.table("fact")
        wanted = set(dim.column("id")[
            np.asarray(dim.column_values("tag")) == "x_3"].tolist())
        expected = sum(int(v) in wanted for v in fact.column("dim_id"))
        assert on.table.to_rows()[0][0] == expected

        assert on.semijoin_filters == 1
        assert on.semijoin_pruned_rows > 0
        assert off.semijoin_filters == 0 and off.semijoin_pruned_rows == 0


# ----------------------------------------------------------------------
# Satellite regressions
# ----------------------------------------------------------------------
class TestInListRegressions:
    REF = ColumnRef("t", "c")

    def test_unrepresentable_float_literal_does_not_corrupt_match(self):
        """3.7 against an int column must match nothing -- the previous
        dtype coercion truncated it to 3 and matched spurious rows."""
        data = np.array([1, 2, 3, 4], dtype=np.int64)
        mask = InList(self.REF, (2, 3.7)).evaluate(lambda ref: data)
        assert mask.tolist() == [False, True, False, False]

    def test_empty_value_list_matches_nothing(self):
        data = np.arange(5)
        assert not InList(self.REF, ()).evaluate(lambda ref: data).any()

    def test_mixed_type_values_against_object_column(self):
        data = np.array(["a", 7, None, "b"], dtype=object)
        mask = InList(self.REF, ("a", 7, "missing")).evaluate(lambda ref: data)
        assert mask.tolist() == [True, True, False, False]

    def test_representable_fast_path_unchanged(self):
        data = np.arange(10, dtype=np.int64)
        mask = InList(self.REF, (2, 5, 11)).evaluate(lambda ref: data)
        assert np.array_equal(np.nonzero(mask)[0], np.array([2, 5]))


class TestAnalyzeNullHandling:
    def test_object_column_with_nones_does_not_crash(self):
        """The previous float-only NaN path crashed on object columns."""
        stats = analyze_columns({
            "c": np.array(["a", None, "b", "a", None], dtype=object)})
        col = stats.columns["c"]
        assert col.null_fraction == pytest.approx(0.4)
        assert col.ndv == 2

    def test_mixed_numeric_object_column(self):
        stats = analyze_columns({
            "c": np.array([1, 2.5, None, float("nan"), 4], dtype=object)})
        assert stats.columns["c"].null_fraction == pytest.approx(0.4)

    def test_encoded_table_analyzed_over_decoded_values(self):
        table = DataTable("t", {
            "c": np.array(["hot"] * 8 + ["cold"] * 2, dtype=object)})
        table.encode_strings()
        stats = analyze_table(table)
        assert "hot" in stats.columns["c"].mcv_values
