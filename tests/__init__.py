"""Unit/property test package (a real package so test module names are
namespaced: ``tests.test_morsels`` and ``benchmarks.test_morsels`` may
share a basename without colliding in pytest's importer)."""
