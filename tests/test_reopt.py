"""Tests for the re-optimization baselines, the registry, and the reports."""

import pytest

from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.plan.physical import JoinMethod
from repro.reopt import (
    ALGORITHM_NAMES,
    BaselineConfig,
    DefaultBaseline,
    IEFBaseline,
    OptimalBaseline,
    Perron19Baseline,
    PopBaseline,
    ReoptBaseline,
    make_algorithm,
)
from repro.report import ExecutionReport, IterationRecord, WorkloadResult
from tests.conftest import five_way_query


@pytest.fixture(scope="module")
def expected_rows(tiny_db):
    plan = Optimizer(tiny_db).plan(five_way_query())
    return Executor(tiny_db).execute(plan).table.to_rows()


class TestRegistry:
    def test_all_names_constructible(self, tiny_db):
        for name in ALGORITHM_NAMES:
            algorithm = make_algorithm(name, tiny_db)
            assert hasattr(algorithm, "run")
            assert algorithm.name == name or name in algorithm.name

    def test_unknown_name_rejected(self, tiny_db):
        with pytest.raises(ValueError):
            make_algorithm("MagicSort", tiny_db)


class TestBaselineCorrectness:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_every_algorithm_same_answer(self, name, tiny_db, tiny_query,
                                         expected_rows):
        """All 14 algorithms must return the same result for the 5-way join."""
        report = make_algorithm(name, tiny_db).run(tiny_query)
        assert not report.timed_out
        assert report.final_table.to_rows() == expected_rows

    def test_temp_tables_dropped_after_each_query(self, tiny_db, tiny_query):
        for name in ("QuerySplit", "Pop", "Perron19", "IEF"):
            make_algorithm(name, tiny_db).run(tiny_query)
            assert tiny_db.temp_table_names == []


class TestBaselineBehaviour:
    def test_default_never_materializes(self, tiny_db, tiny_query):
        report = DefaultBaseline(tiny_db, Optimizer(tiny_db)).run(tiny_query)
        assert report.materializations == 0
        assert report.num_iterations == 1

    def test_optimal_uses_oracle(self, tiny_db, tiny_query):
        baseline = OptimalBaseline(tiny_db)
        report = baseline.run(tiny_query)
        assert report.materializations == 0
        assert baseline.oracle.executions >= 0  # oracle reset after the run
        assert report.final_rows == 1

    def test_pop_materializes_every_join(self, tiny_db, tiny_query):
        report = PopBaseline(tiny_db, Optimizer(tiny_db)).run(tiny_query)
        # A 5-way join has 4 joins; the final one is never materialized.
        assert report.materializations == 3

    def test_perron_materializes_and_uses_high_threshold(self, tiny_db, tiny_query):
        report = Perron19Baseline(tiny_db, Optimizer(tiny_db)).run(tiny_query)
        assert report.materializations >= 1
        assert Perron19Baseline.trigger_threshold == 32.0

    def test_reopt_materializes_only_on_trigger(self, tiny_db, tiny_query):
        report = ReoptBaseline(tiny_db, Optimizer(tiny_db)).run(tiny_query)
        assert report.materializations <= 3
        assert all(it.materialized == it.replanned or not it.materialized
                   for it in report.iterations)

    def test_reopt_points_are_pipeline_breakers(self, tiny_db):
        baseline = ReoptBaseline(tiny_db, Optimizer(tiny_db))
        plan = Optimizer(tiny_db).plan(five_way_query())
        for node in baseline.materialization_points(plan):
            assert node.is_pipeline_breaker

    def test_ief_selects_single_uncertain_point(self, tiny_db):
        baseline = IEFBaseline(tiny_db, Optimizer(tiny_db))
        plan = Optimizer(tiny_db).plan(five_way_query())
        points = baseline.materialization_points(plan)
        assert len(points) <= 1

    def test_statistics_toggle_respected(self, tiny_db, tiny_query):
        config = BaselineConfig(collect_statistics=False)
        report = Perron19Baseline(tiny_db, Optimizer(tiny_db), config=config).run(tiny_query)
        assert report.stats_collections == 0

    def test_join_overflow_reported_as_timeout(self):
        """A JoinOverflowError inside execution surfaces as a timed-out run."""
        import numpy as np

        from repro.catalog.schema import Column, Schema, TableSchema
        from repro.catalog.types import DataType
        from repro.plan.expressions import ColumnRef, JoinPredicate
        from repro.plan.logical import Query, RelationRef, SPJQuery
        from repro.storage.database import Database, IndexConfig
        from repro.storage.table import DataTable

        schema = Schema([
            TableSchema("a", [Column("id", DataType.INT),
                              Column("key", DataType.INT)], primary_key="id"),
            TableSchema("b", [Column("id", DataType.INT),
                              Column("key", DataType.INT)], primary_key="id"),
        ])
        db = Database(schema, index_config=IndexConfig.NONE)
        # 7000 x 7000 rows with a constant join key: 49M matches, above the
        # 40M join-result cap, so the equi-join kernel aborts the query.
        n = 7000
        db.load_table(DataTable("a", {"id": np.arange(n),
                                      "key": np.zeros(n, dtype=np.int64)}))
        db.load_table(DataTable("b", {"id": np.arange(n),
                                      "key": np.zeros(n, dtype=np.int64)}))
        query = Query.from_spj(SPJQuery(
            name="overflow",
            relations=(RelationRef.base("a", "a"), RelationRef.base("b", "b")),
            join_predicates=(JoinPredicate(ColumnRef("a", "key"),
                                           ColumnRef("b", "key")),),
        ))
        baseline = DefaultBaseline(db, Optimizer(db),
                                   config=BaselineConfig(timeout_seconds=5.0))
        report = baseline.run(query)
        assert report.timed_out
        assert report.total_time >= 5.0
        assert db.temp_table_names == []

    def test_timeout_flag(self, tiny_db, tiny_query):
        config = BaselineConfig(timeout_seconds=0.0)
        report = PopBaseline(tiny_db, Optimizer(tiny_db), config=config).run(tiny_query)
        assert report.timed_out
        assert report.total_time >= 0.0


class TestReports:
    def _record(self, **kwargs):
        defaults = dict(index=0, description="x", aliases=frozenset({"a"}),
                        result_rows=10, wall_time=0.5, memory_bytes=100,
                        materialized=True, replanned=False)
        defaults.update(kwargs)
        return IterationRecord(**defaults)

    def test_materialization_metrics(self):
        report = ExecutionReport(query_name="q", algorithm="A", total_time=1.0,
                                 iterations=[self._record(),
                                             self._record(index=1, materialized=False)])
        assert report.num_iterations == 2
        assert report.materializations == 1
        assert report.materialized_bytes == 100
        assert report.avg_memory_per_materialization == 100
        assert report.max_intermediate_rows == 10

    def test_empty_report_metrics(self):
        report = ExecutionReport(query_name="q", algorithm="A", total_time=0.0)
        assert report.avg_memory_per_materialization == 0.0
        assert report.max_intermediate_rows == 0
        assert report.timeline() == []

    def test_workload_result_aggregation(self):
        result = WorkloadResult(algorithm="A", reports=[
            ExecutionReport(query_name="q1", algorithm="A", total_time=1.0),
            ExecutionReport(query_name="q2", algorithm="A", total_time=2.0,
                            timed_out=True),
        ])
        assert result.total_time == 3.0
        assert result.timeouts == 1
        assert result.report_for("q1").query_name == "q1"
        with pytest.raises(KeyError):
            result.report_for("zz")
