"""Thread-safety stress tests for the engine-level SubplanCache.

The serving layer (:mod:`repro.serving`) shares one
:class:`~repro.executor.subplan_cache.SubplanCache` across a pool of
worker threads, so the cache's byte-budget ledger and hit/miss counters
must stay exact under arbitrary interleavings of ``get``/``put`` and the
eviction loop.  These tests hammer those paths directly with synthetic
signatures and chunks (no query execution): the budgets are set small
enough that almost every ``put`` races an eviction, and
:meth:`~repro.executor.subplan_cache.SubplanCache.check_invariants` is
polled *while* the writers run, not only after they finish.

What a failure means:

* a ledger/entry-map mismatch or a ``total_bytes`` drift -- a lost update
  in ``put``'s accounting or the eviction loop;
* ``hits + misses != issued gets`` -- a torn counter increment;
* a chunk coming back with the wrong row count -- cross-key corruption.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.executor.chunk import Chunk
from repro.executor.subplan_cache import SubplanCache

N_SIGNATURES = 32
N_THREADS = 8
OPS_PER_THREAD = 1500


def make_signature(i: int):
    """A synthetic, hashable, non-temp signature (scan[3] is ``is_temp``)."""
    return (frozenset({(f"table_{i}", f"t{i}", (), False)}), frozenset())


def expected_rows(i: int) -> int:
    return 10 + i


def make_chunk(i: int) -> Chunk:
    """A sourceless chunk costing ``expected_rows(i) * 8`` ledger bytes."""
    return Chunk(sources=(), num_rows=expected_rows(i))


class TestConcurrentStress:
    def _hammer(self, cache: SubplanCache, put_fraction: float):
        """Run N_THREADS workers of mixed get/put traffic; return tallies."""
        signatures = [make_signature(i) for i in range(N_SIGNATURES)]
        barrier = threading.Barrier(N_THREADS)
        violations: list[str] = []
        gets = [0] * N_THREADS
        corrupt: list[tuple[int, int, int]] = []

        def worker(thread_id: int) -> None:
            rng = random.Random(thread_id)
            barrier.wait()
            for op in range(OPS_PER_THREAD):
                i = rng.randrange(N_SIGNATURES)
                if rng.random() < put_fraction:
                    cache.put(signatures[i], make_chunk(i))
                else:
                    gets[thread_id] += 1
                    chunk = cache.get(signatures[i])
                    if chunk is not None and chunk.num_rows != expected_rows(i):
                        corrupt.append((i, expected_rows(i), chunk.num_rows))
                if op % 100 == 0:
                    # Interleaved invariant probe: must see a consistent
                    # snapshot even while every other thread is mutating.
                    violations.extend(cache.check_invariants())

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return gets, violations, corrupt

    def test_byte_budget_and_counters_exact_under_eviction_races(self):
        # Chunk costs range 80..328 bytes; ~2000 bytes holds only a handful
        # of entries, so puts constantly race the eviction loop.
        cache = SubplanCache(max_entries=16, max_rows=1_000_000,
                             max_bytes=2000)
        gets, violations, corrupt = self._hammer(cache, put_fraction=0.4)

        assert violations == []
        assert cache.check_invariants() == []
        assert corrupt == [], f"cross-key corruption: {corrupt[:5]}"
        # Every get incremented exactly one of hits/misses -- a torn
        # ``self.hits += 1`` would lose updates here.
        assert cache.hits + cache.misses == sum(gets)
        # Nothing in this workload is cache-ineligible.
        assert cache.rejected == 0
        # The budget held at rest, and the survivors carry correct values.
        assert cache.total_bytes <= cache.max_bytes
        assert len(cache) <= cache.max_entries
        for i in range(N_SIGNATURES):
            chunk = cache.peek(make_signature(i))
            if chunk is not None:
                assert chunk.num_rows == expected_rows(i)

    def test_entry_count_budget_under_put_heavy_traffic(self):
        # Generous bytes, tiny entry count: eviction is driven purely by
        # ``max_entries``, exercising the other branch of the loop.
        cache = SubplanCache(max_entries=4, max_rows=1_000_000,
                             max_bytes=1 << 30)
        gets, violations, corrupt = self._hammer(cache, put_fraction=0.8)
        assert violations == []
        assert corrupt == []
        assert cache.check_invariants() == []
        assert len(cache) <= 4
        assert cache.hits + cache.misses == sum(gets)


class TestCounterAtomicity:
    def test_hit_counter_is_exact_on_a_hot_entry(self):
        """All threads hitting one resident entry: hits must equal gets."""
        cache = SubplanCache()
        signature = make_signature(0)
        cache.put(signature, make_chunk(0))
        per_thread = 4000
        barrier = threading.Barrier(N_THREADS)

        def worker() -> None:
            barrier.wait()
            for _ in range(per_thread):
                assert cache.get(signature) is not None

        threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.hits == N_THREADS * per_thread
        assert cache.misses == 0


class TestConcurrentBind:
    class _FakeDB:
        """Stands in for a Database: bind only consults ``origin``."""

        def __init__(self, origin=None):
            self.origin = origin if origin is not None else self

    def test_sibling_views_bind_concurrently_others_rejected(self):
        base = self._FakeDB()
        views = [self._FakeDB(origin=base) for _ in range(N_THREADS)]
        cache = SubplanCache()
        barrier = threading.Barrier(N_THREADS)
        errors: list[Exception] = []

        def worker(view) -> None:
            barrier.wait()
            try:
                for _ in range(50):
                    cache.bind(view)
            except Exception as exc:  # noqa: BLE001 -- collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(view,))
                   for view in views]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        with pytest.raises(ValueError):
            cache.bind(self._FakeDB())
