"""Unit tests for the QuerySplit core: join graph, QSA, SSA, driver, non-SPJ."""

import pytest

from repro.core.join_graph import build_join_graph
from repro.core.nonspj import count_spj_blocks, execute_query_tree
from repro.core.qsa import QSAStrategy, generate_subqueries
from repro.core.splitter import QuerySplitConfig, QuerySplitExecutor
from repro.core.ssa import (
    CostFunction,
    SubqueryEstimate,
    phi1,
    phi2,
    phi3,
    phi4,
    phi5,
    select_subquery,
)
from repro.core.subquery import assert_covers, coverage_gaps, covers
from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.plan.expressions import ColumnRef, JoinPredicate
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    Query,
    RelationRef,
    SPJNode,
    SPJQuery,
    UnionNode,
)
from tests.conftest import five_way_query


class TestJoinGraph:
    def test_pk_fk_edges_directed_from_fk_side(self, tiny_schema):
        graph = build_join_graph(five_way_query(), tiny_schema)
        directed = {(e.source, e.target) for e in graph.edges if not e.bidirectional}
        assert ("mk", "t") in directed
        assert ("ci", "n") in directed

    def test_centers_are_fact_tables(self, tiny_schema):
        graph = build_join_graph(five_way_query(), tiny_schema)
        assert set(graph.centers()) == {"mk", "ci"}

    def test_reversed_graph_swaps_centers(self, tiny_schema):
        graph = build_join_graph(five_way_query(), tiny_schema).reversed()
        assert set(graph.centers()) == {"t", "k", "n"}

    def test_cycle_edges_removed_preferring_bidirectional(self, tiny_schema):
        spj = five_way_query()
        # Add the redundant fk-fk edge ci.movie_id = mk.movie_id (JOB 6d cycle).
        cyclic = SPJQuery(
            name="cyclic",
            relations=spj.relations,
            filters=spj.filters,
            join_predicates=spj.join_predicates + (
                JoinPredicate(ColumnRef("ci", "movie_id"), ColumnRef("mk", "movie_id")),),
        )
        graph = build_join_graph(cyclic, tiny_schema)
        assert len(graph.removed_edges) == 1
        assert graph.removed_edges[0].bidirectional

    def test_isolated_vertices(self, tiny_schema):
        spj = SPJQuery(name="cross",
                       relations=(RelationRef.base("t", "t"), RelationRef.base("k", "k")))
        graph = build_join_graph(spj, tiny_schema)
        assert set(graph.isolated()) == {"t", "k"}


class TestCovering:
    def test_fk_center_covers(self, tiny_schema):
        spj = five_way_query()
        subqueries = generate_subqueries(spj, tiny_schema, QSAStrategy.FK_CENTER)
        assert covers(subqueries, spj)
        assert coverage_gaps(subqueries, spj) == []

    def test_missing_relation_detected(self, tiny_schema):
        spj = five_way_query()
        subqueries = generate_subqueries(spj, tiny_schema, QSAStrategy.FK_CENTER)
        gaps = coverage_gaps(subqueries[:1], spj)
        assert gaps  # dropping a subquery breaks covering
        with pytest.raises(AssertionError):
            assert_covers(subqueries[:1], spj)

    def test_transitive_join_implication(self, tiny_schema):
        """a=b and b=c imply a=c: covering accepts the transitive closure."""
        base = SPJQuery(
            name="tri",
            relations=(RelationRef.base("t", "t"), RelationRef.base("mk", "mk"),
                       RelationRef.base("ci", "ci")),
            join_predicates=(
                JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id")),
                JoinPredicate(ColumnRef("ci", "movie_id"), ColumnRef("t", "id")),
                JoinPredicate(ColumnRef("ci", "movie_id"), ColumnRef("mk", "movie_id")),
            ),
        )
        subqueries = generate_subqueries(base, tiny_schema, QSAStrategy.FK_CENTER)
        assert covers(subqueries, base)


class TestQSA:
    def test_fk_center_shape_matches_paper_example(self, tiny_schema):
        """Figure 8: S1 = k |x| mk |x| t centred at mk, S2 = t |x| ci |x| n at ci."""
        subqueries = generate_subqueries(five_way_query(), tiny_schema,
                                         QSAStrategy.FK_CENTER)
        alias_sets = {sub.covered_aliases() for sub in subqueries}
        assert frozenset({"k", "mk", "t"}) in alias_sets
        assert frozenset({"t", "ci", "n"}) in alias_sets
        assert len(subqueries) == 2

    def test_pk_center_produces_dimension_centred_subqueries(self, tiny_schema):
        subqueries = generate_subqueries(five_way_query(), tiny_schema,
                                         QSAStrategy.PK_CENTER)
        alias_sets = {sub.covered_aliases() for sub in subqueries}
        # t is referenced by both mk and ci, so its subquery contains both.
        assert frozenset({"t", "mk", "ci"}) in alias_sets

    def test_min_subquery_one_per_join(self, tiny_schema):
        spj = five_way_query()
        subqueries = generate_subqueries(spj, tiny_schema, QSAStrategy.MIN_SUBQUERY)
        assert len(subqueries) == spj.num_joins
        assert all(len(sub.relations) == 2 for sub in subqueries)

    def test_small_queries_not_split(self, tiny_schema):
        spj = SPJQuery(
            name="pair",
            relations=(RelationRef.base("mk", "mk"), RelationRef.base("t", "t")),
            join_predicates=(JoinPredicate(ColumnRef("mk", "movie_id"),
                                           ColumnRef("t", "id")),))
        for strategy in QSAStrategy:
            subqueries = generate_subqueries(spj, tiny_schema, strategy)
            assert len(subqueries) == 1

    def test_filters_attached_to_subqueries(self, tiny_schema):
        spj = five_way_query()
        subqueries = generate_subqueries(spj, tiny_schema, QSAStrategy.FK_CENTER)
        for sub in subqueries:
            for pred in sub.filters:
                assert pred in spj.filters

    def test_every_strategy_covers_job_queries(self, tiny_schema):
        """Property: all three strategies produce covering sets for all samples."""
        from repro.workloads.imdb import IMDB_SCHEMA
        from repro.workloads.job_queries import job_queries

        for query in job_queries(families=[2, 6, 9, 17, 21, 28]):
            for strategy in QSAStrategy:
                subqueries = generate_subqueries(query.spj, IMDB_SCHEMA, strategy)
                assert covers(subqueries, query.spj), (query.name, strategy)


class TestSSA:
    def test_phi_function_values(self):
        import math

        assert phi1(10, 100) == 10
        assert phi2(10, 100) == pytest.approx(10 * math.log(100))
        assert phi3(10, 100) == pytest.approx(100.0)
        assert phi4(10, 100) == 1000
        assert phi5(10, 100) == 100

    def test_phi4_prefers_small_cost_times_rows(self):
        estimates = [
            SubqueryEstimate(None, cost=100.0, rows=10.0),
            SubqueryEstimate(None, cost=10.0, rows=20.0),
            SubqueryEstimate(None, cost=50.0, rows=1.0),
        ]
        assert select_subquery(estimates, CostFunction.PHI4) == 2
        assert select_subquery(estimates, CostFunction.PHI1) == 1
        assert select_subquery(estimates, CostFunction.PHI5) == 2

    def test_empty_estimates_rejected(self):
        with pytest.raises(ValueError):
            select_subquery([], CostFunction.PHI4)

    def test_global_deep_requires_plan(self):
        estimates = [SubqueryEstimate(five_way_query(), 1.0, 1.0)]
        with pytest.raises(ValueError):
            select_subquery(estimates, CostFunction.GLOBAL_DEEP, None)

    def test_global_deep_follows_plan(self, tiny_db, tiny_schema):
        spj = five_way_query()
        plan = Optimizer(tiny_db).plan(spj)
        subqueries = generate_subqueries(spj, tiny_schema, QSAStrategy.FK_CENTER)
        estimates = [SubqueryEstimate(sub, 1.0, 1.0) for sub in subqueries]
        idx = select_subquery(estimates, CostFunction.GLOBAL_DEEP, plan)
        deepest = plan.join_nodes()[0].covered_aliases()
        assert deepest <= estimates[idx].subquery.covered_aliases() or idx in range(len(estimates))


class TestQuerySplitDriver:
    @pytest.mark.parametrize("strategy", list(QSAStrategy))
    @pytest.mark.parametrize("cost_function", [CostFunction.PHI1, CostFunction.PHI4,
                                               CostFunction.PHI5,
                                               CostFunction.GLOBAL_DEEP])
    def test_result_matches_default_plan(self, tiny_db, tiny_query, strategy,
                                         cost_function):
        """QuerySplit must produce the same answer as plain execution
        regardless of its policy configuration (Theorem 1)."""
        expected = Executor(tiny_db).execute(
            Optimizer(tiny_db).plan(tiny_query.spj)).table.to_rows()
        config = QuerySplitConfig(qsa_strategy=strategy, cost_function=cost_function)
        runner = QuerySplitExecutor(tiny_db, Optimizer(tiny_db), config=config)
        report = runner.run(tiny_query)
        assert report.final_table.to_rows() == expected

    def test_temp_tables_cleaned_up(self, tiny_db, tiny_query):
        runner = QuerySplitExecutor(tiny_db, Optimizer(tiny_db))
        runner.run(tiny_query)
        assert tiny_db.temp_table_names == []

    def test_iterations_and_materializations_recorded(self, tiny_db, tiny_query):
        runner = QuerySplitExecutor(tiny_db, Optimizer(tiny_db))
        report = runner.run(tiny_query)
        assert report.num_iterations == 2
        assert report.materializations == 1
        assert report.planner_invocations > 0
        assert all(it.result_rows >= 0 for it in report.iterations)

    def test_statistics_toggle(self, tiny_db, tiny_query):
        with_stats = QuerySplitExecutor(
            tiny_db, Optimizer(tiny_db),
            config=QuerySplitConfig(collect_statistics=True)).run(tiny_query)
        without = QuerySplitExecutor(
            tiny_db, Optimizer(tiny_db),
            config=QuerySplitConfig(collect_statistics=False)).run(tiny_query)
        assert with_stats.stats_collections > 0
        assert without.stats_collections == 0
        assert with_stats.final_table.to_rows() == without.final_table.to_rows()

    def test_timeout_marks_report(self, tiny_db, tiny_query):
        config = QuerySplitConfig(timeout_seconds=0.0)
        report = QuerySplitExecutor(tiny_db, Optimizer(tiny_db), config=config).run(tiny_query)
        assert report.timed_out

    def test_disconnected_query_cartesian_merge(self, tiny_db):
        spj = SPJQuery(
            name="cross",
            relations=(RelationRef.base("k", "k"), RelationRef.base("n", "n")),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )
        report = QuerySplitExecutor(tiny_db, Optimizer(tiny_db)).run(Query.from_spj(spj))
        expected = tiny_db.table("k").num_rows * tiny_db.table("n").num_rows
        assert report.final_table.to_rows()[0][0] == expected


class TestNonSPJ:
    def test_aggregate_over_spj(self, tiny_db):
        spj = SPJQuery(
            name="block",
            relations=(RelationRef.base("ci", "ci"), RelationRef.base("n", "n")),
            join_predicates=(JoinPredicate(ColumnRef("ci", "person_id"),
                                           ColumnRef("n", "id")),),
        )
        root = AggregateNode(
            child=SPJNode(spj),
            group_by=(ColumnRef("n", "gender"),),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )
        query = Query(name="agg", root=root)
        runner = QuerySplitExecutor(tiny_db, Optimizer(tiny_db))
        report = runner.run(query)
        rows = dict(report.final_table.to_rows())
        assert set(rows) == {"m", "f"}
        assert sum(rows.values()) == tiny_db.table("ci").num_rows

    def test_union_of_blocks(self, tiny_db):
        spj = SPJQuery(
            name="block",
            relations=(RelationRef.base("k", "k"),),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )
        query = Query(name="union", root=UnionNode((SPJNode(spj), SPJNode(spj))))
        report = QuerySplitExecutor(tiny_db, Optimizer(tiny_db)).run(query)
        assert report.final_rows == 2

    def test_count_spj_blocks(self, tiny_query):
        assert count_spj_blocks(tiny_query.root) == 1

    def test_execute_query_tree_rejects_unknown_nodes(self):
        class Bogus:
            pass

        with pytest.raises(TypeError):
            execute_query_tree(Bogus(), lambda spj: None)
