#!/usr/bin/env python3
"""Docs-consistency check: every referenced ``*.md`` file must exist.

Scans the repository's Python sources (docstrings and comments included --
the whole file text is searched) and Markdown documents for references to
Markdown files, and fails if a referenced document is missing from the
repository.  This keeps pointers like "see EXPERIMENTS.md" in
``src/repro/bench/harness.py`` from dangling when documents are renamed.

Usage::

    python tools/check_docs.py [repo_root]

Exits non-zero listing every dangling reference.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Directories scanned for referencing files.
SCANNED_DIRS = ("src", "examples", "tests", "benchmarks", "tools")

#: Tokens that look like a Markdown file reference.  URLs are filtered out
#: separately; a bare ".md" (empty stem) never matches.
MD_REFERENCE = re.compile(r"[A-Za-z0-9_][A-Za-z0-9_./-]*\.md\b")


def referencing_files(root: Path) -> list[Path]:
    """All files whose text is searched for Markdown references."""
    files = sorted(root.glob("*.md"))
    for directory in SCANNED_DIRS:
        files.extend(sorted((root / directory).rglob("*.py")))
        files.extend(sorted((root / directory).rglob("*.md")))
    return [f for f in files if f.is_file()]


def find_missing_references(root: Path) -> list[tuple[Path, str]]:
    """``(referencing file, reference)`` pairs that resolve to no file.

    A reference resolves if it exists relative to the repository root or
    relative to the referencing file's own directory.
    """
    missing: list[tuple[Path, str]] = []
    for path in referencing_files(root):
        text = path.read_text(encoding="utf-8", errors="replace")
        for line in text.splitlines():
            for match in MD_REFERENCE.finditer(line):
                reference = match.group()
                start = match.start()
                prefix = line[max(0, start - 8):start]
                if "://" in prefix:  # part of a URL
                    continue
                if not ((root / reference).is_file()
                        or (path.parent / reference).is_file()):
                    missing.append((path, reference))
    return missing


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    missing = find_missing_references(root)
    if missing:
        print(f"docs check FAILED: {len(missing)} dangling Markdown reference(s):")
        for path, reference in missing:
            print(f"  {path.relative_to(root)}: {reference!r} does not exist")
        return 1
    print(f"docs check OK: all Markdown references under {root} resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
