#!/usr/bin/env python3
"""Docs-consistency check: references resolve, experiments are documented.

Two checks:

1. Scans the repository's Python sources (docstrings and comments included
   -- the whole file text is searched) and Markdown documents for
   references to Markdown files, and fails if a referenced document is
   missing from the repository.  This keeps pointers like "see
   EXPERIMENTS.md" in ``src/repro/bench/harness.py`` from dangling when
   documents are renamed.
2. Loads the experiment registry (``repro.experiments.registry``) and fails
   if any registered experiment is not mentioned in EXPERIMENTS.md, so the
   CLI catalogue can never drift from the documentation.

Usage::

    python tools/check_docs.py [repo_root]

Exits non-zero listing every dangling reference / undocumented experiment.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Directories scanned for referencing files.
SCANNED_DIRS = ("src", "examples", "tests", "benchmarks", "tools")

#: Tokens that look like a Markdown file reference.  URLs are filtered out
#: separately; a bare ".md" (empty stem) never matches.
MD_REFERENCE = re.compile(r"[A-Za-z0-9_][A-Za-z0-9_./-]*\.md\b")


def referencing_files(root: Path) -> list[Path]:
    """All files whose text is searched for Markdown references."""
    files = sorted(root.glob("*.md"))
    for directory in SCANNED_DIRS:
        files.extend(sorted((root / directory).rglob("*.py")))
        files.extend(sorted((root / directory).rglob("*.md")))
    return [f for f in files if f.is_file()]


def find_missing_references(root: Path) -> list[tuple[Path, str]]:
    """``(referencing file, reference)`` pairs that resolve to no file.

    A reference resolves if it exists relative to the repository root or
    relative to the referencing file's own directory.
    """
    missing: list[tuple[Path, str]] = []
    for path in referencing_files(root):
        text = path.read_text(encoding="utf-8", errors="replace")
        for line in text.splitlines():
            for match in MD_REFERENCE.finditer(line):
                reference = match.group()
                start = match.start()
                prefix = line[max(0, start - 8):start]
                if "://" in prefix:  # part of a URL
                    continue
                if not ((root / reference).is_file()
                        or (path.parent / reference).is_file()):
                    missing.append((path, reference))
    return missing


def find_undocumented_experiments(root: Path) -> list[str]:
    """Registered experiment names that EXPERIMENTS.md never mentions.

    Loading the registry imports the ``repro`` package (and therefore
    numpy); in a bare environment the check reports that clearly instead
    of dying with a traceback — and still fails, because a green docs
    check must mean the registry was actually compared.
    """
    src = str(root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    try:
        from repro.experiments import registry
        specs = registry.load_all()
    except ImportError as exc:
        return [f"<registry check could not run: {exc}>"]
    experiments_md = (root / "EXPERIMENTS.md")
    text = experiments_md.read_text(encoding="utf-8") if experiments_md.is_file() else ""
    return sorted(name for name in specs if name not in text)


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    failures = 0
    missing = find_missing_references(root)
    if missing:
        failures += 1
        print(f"docs check FAILED: {len(missing)} dangling Markdown reference(s):")
        for path, reference in missing:
            print(f"  {path.relative_to(root)}: {reference!r} does not exist")
    undocumented = find_undocumented_experiments(root)
    if undocumented:
        failures += 1
        print(f"docs check FAILED: {len(undocumented)} registered experiment(s) "
              "missing from EXPERIMENTS.md:")
        for name in undocumented:
            print(f"  {name}")
    if failures:
        return 1
    print(f"docs check OK: all Markdown references under {root} resolve and "
          "every registered experiment is documented in EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
