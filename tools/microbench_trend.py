#!/usr/bin/env python3
"""Append the storage/executor microbenchmark headlines to a trend file.

Runs the two hot-path microbenchmarks (`bench_scan_pruning` and
`bench_compiled_scan`) plus reduced `bench_serving`, `bench_stale_stats`,
and `bench_morsels` sweeps at a smoke scale and appends one entry --

```json
{"rev": "<git short rev>", "recorded_at": "<ISO-8601 UTC>",
 "scan_pruning": {...summary...}, "compiled_scan": {...summary...},
 "serving": {"p95_under_load": ..., "peak_throughput_qps": ...},
 "stale_stats": {"triggered_qerror_improvement": ...,
                 "reopt_advantage_under_drift": ...},
 "morsels": {"cpus": ..., "scan_speedup_at_4": ...,
             "join_speedup_at_4": ...}}
```

(`morsels.cpus` records the machine's core count: thread scaling cannot
beat it, so a flat speedup on a small box is interpretable rather than a
regression.)

-- to the committed ``BENCH_microbench.json`` trend file, so speedup
regressions are visible as a time series across PRs rather than only as a
pass/fail bar in ``benchmarks/``.  Re-running on the same revision
replaces that revision's entry instead of duplicating it.

Usage (CI runs this after the benchmark step; locally, run before
committing perf-relevant changes)::

    PYTHONPATH=src python tools/microbench_trend.py
    PYTHONPATH=src python tools/microbench_trend.py --num-rows 200000 --out BENCH_microbench.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA_VERSION = 1


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trend(path: Path) -> dict:
    if path.exists():
        data = json.loads(path.read_text())
        if data.get("schema_version") != SCHEMA_VERSION:
            raise SystemExit(
                f"{path}: unsupported schema_version {data.get('schema_version')}")
        return data
    return {"schema_version": SCHEMA_VERSION, "entries": []}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_microbench.json",
                        help="trend file to append to (default: committed "
                             "BENCH_microbench.json)")
    parser.add_argument("--num-rows", type=int, default=120_000,
                        help="rows per microbenchmark table (smoke default)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timed cell")
    parser.add_argument("--serving-scale", type=float, default=0.1,
                        help="database scale of the serving smoke sweep")
    parser.add_argument("--serving-queries", type=int, default=32,
                        help="stream length of the serving smoke sweep")
    parser.add_argument("--stale-scale", type=float, default=0.6,
                        help="database scale of the stale-statistics sweep")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.experiments import (
        bench_compiled_scan,
        bench_morsels,
        bench_scan_pruning,
        bench_serving,
        bench_stale_stats,
    )

    scan = bench_scan_pruning.run(num_rows=args.num_rows,
                                  repeats=args.repeats, verbose=False)
    compiled = bench_compiled_scan.run(num_rows=args.num_rows,
                                       repeats=args.repeats, verbose=False)
    # Reduced serving smoke: only the two cells the headline needs (the
    # single-worker saturation point and the loaded max-concurrency cell).
    served = bench_serving.run(scale=args.serving_scale,
                               queries=args.serving_queries,
                               workers_sweep=(1, 4), rates=(64.0,),
                               policies=("shed",), verbose=False)
    # Reduced stale-statistics sweep: just the cells the two drift
    # headlines need (never/triggered at the top drift rate, the static
    # optimizer and the strongest re-optimizer).
    stale = bench_stale_stats.run(scale=args.stale_scale,
                                  drift_rates=(0.5,),
                                  policies=("never", "triggered"),
                                  algorithms=("Default", "Reopt"),
                                  steps=4, queries_per_step=6,
                                  verbose=False)
    # Reduced morsel sweep: the 1/2/4-worker cells the scaling headline
    # needs (8 workers adds nothing on the machines that record trends).
    morsels = bench_morsels.run(num_rows=max(args.num_rows, 200_000),
                                repeats=args.repeats,
                                workers_sweep=(1, 2, 4), verbose=False)

    entry = {
        "rev": git_rev(),
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "num_rows": args.num_rows,
        "repeats": args.repeats,
        "scan_pruning": scan.summary,
        "compiled_scan": compiled.summary,
        "serving": dict(served.data["headline"],
                        scale=args.serving_scale,
                        queries=args.serving_queries),
        "stale_stats": dict(stale.data["headline"], scale=args.stale_scale),
        "morsels": dict(morsels.data["headline"],
                        num_rows=morsels.summary["num_rows"]),
    }
    trend = load_trend(args.out)
    trend["entries"] = [e for e in trend["entries"]
                        if e.get("rev") != entry["rev"]] + [entry]
    args.out.write_text(json.dumps(trend, indent=2, sort_keys=True) + "\n")

    best_prune = entry["scan_pruning"].get("best_speedup_at_1pct")
    speedups = entry["compiled_scan"].get("speedups", {})
    print(f"appended {entry['rev']} to {args.out} "
          f"({len(trend['entries'])} entries): "
          f"scan_pruning best@1%={best_prune and f'{best_prune:.2f}x'}, "
          f"compiled string_eq/full="
          f"{speedups.get('string_eq/full', 0):.2f}x, "
          f"multi3/full={speedups.get('multi3/full', 0):.2f}x, "
          f"semijoin={entry['compiled_scan'].get('semijoin_speedup', 0):.2f}x, "
          f"serving p95@load={entry['serving']['p95_under_load'] * 1e3:.1f}ms "
          f"({entry['serving']['peak_throughput_qps']:.1f} qps peak), "
          f"stale triggered-ANALYZE="
          f"{entry['stale_stats']['triggered_qerror_improvement']:.2f}x "
          f"q-err, reopt-under-drift="
          f"{entry['stale_stats']['reopt_advantage_under_drift']:.2f}x, "
          f"morsels scan@4w={entry['morsels']['scan_speedup_at_4']:.2f}x "
          f"join@4w={entry['morsels']['join_speedup_at_4']:.2f}x "
          f"({entry['morsels']['cpus']} cpus)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
